"""Process-pool fan-out for workload costing.

:class:`ParallelCoster` owns a ``ProcessPoolExecutor`` whose workers each
hold a full :class:`~repro.optimizer.what_if.CostEvaluator` over (a copy
of) the parent's stats-only database.  ``costs`` chunks a workload's
statements contiguously, plans each chunk in a worker and reassembles the
per-query costs **in the original order**, so the parent's weighted sum
is bit-identical to a serial evaluation.

Workers additionally ship back

* the number of real optimizer invocations they performed (merged into
  the parent's ``optimizer.calls`` accounting), and
* every plan-cache entry they created that has not been shipped before
  (``(sql, config keys, used keys | None, plan)``), which the parent
  merges into its own exact + canonical cache tiers so later serial
  lookups still hit.

Workers are forked (the evaluator and database transfer by COW memory,
not pickling).  On platforms without the ``fork`` start method -- or on
any pool failure -- ``costs`` returns ``(None, 0, [])`` and the caller
falls back to serial costing.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from ..catalog import Index
from ..engine import Database
from ..sqlparser import ast

__all__ = ["ParallelCoster"]

# Per-worker-process state, set up by _init_worker after fork.
_WORKER_EV = None
_WORKER_EXPORTED: set = set()


def _init_worker(db: Database, fast_path: bool) -> None:
    global _WORKER_EV, _WORKER_EXPORTED
    from .what_if import CostEvaluator

    # The parent hands over its already-prepared evaluation database
    # (indexes dropped when configurations are meant to be evaluated
    # bare), so the worker must NOT clone/strip again:
    # include_schema_indexes=True uses it as is.
    _WORKER_EV = CostEvaluator(db, include_schema_indexes=True, fast_path=fast_path)
    _WORKER_EXPORTED = set()


def _run_chunk(
    chunk_index: int, sqls: list[str], config: list[Index]
) -> tuple[int, list[float], int, list[tuple]]:
    """Cost one contiguous chunk of statements in this worker.

    Returns ``(chunk_index, costs, optimizer-call delta, exported cache
    entries)``.  Entries already shipped by this worker in a previous
    chunk are not re-sent.
    """
    ev = _WORKER_EV
    calls_before = ev.optimizer.calls
    costs: list[float] = []
    exported: list[tuple] = []
    for sql in sqls:
        info = ev.analyze(sql)
        relevant = ev._relevant(info, config)
        relevant_keys = frozenset(idx.key for idx in relevant)
        cache_sql = info.cache_sql or info.stmt.to_sql()
        key = (cache_sql, relevant_keys)
        fresh = key not in ev._plan_cache
        plan = ev.plan(info, config)
        costs.append(plan.total_cost)
        if fresh and key not in _WORKER_EXPORTED:
            _WORKER_EXPORTED.add(key)
            used_keys = None
            if ev.fast_path and relevant and isinstance(info.stmt, ast.Select):
                used_keys = frozenset(
                    idx.key for idx in relevant if idx.name in plan.used_indexes
                )
            exported.append((cache_sql, relevant_keys, used_keys, plan))
    return chunk_index, costs, ev.optimizer.calls - calls_before, exported


class ParallelCoster:
    """A lazy, reusable worker pool for one evaluation database."""

    def __init__(
        self,
        db: Database,
        include_schema_indexes: bool = True,
        fast_path: bool = True,
        jobs: int = 2,
    ):
        # ``db`` is the evaluator's internal database: when the evaluator
        # was built with include_schema_indexes=False it is already the
        # stripped stats clone, so workers always treat it as final.
        del include_schema_indexes
        self._db = db
        self._fast_path = bool(fast_path)
        self._jobs = max(1, int(jobs))
        self._executor: Optional[ProcessPoolExecutor] = None
        self._broken = False

    def _ensure_pool(self) -> bool:
        if self._executor is not None:
            return True
        if self._broken:
            return False
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            self._broken = True
            return False
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=self._jobs,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(self._db, self._fast_path),
            )
        except Exception:
            self._broken = True
            return False
        return True

    def costs(
        self, sqls: list[str], config: list[Index], jobs: int
    ) -> tuple[Optional[list[float]], int, list[tuple]]:
        """Cost *sqls* under *config* across the pool.

        Returns ``(per-query costs in input order, total optimizer-call
        delta, exported cache entries)``; ``(None, 0, [])`` signals the
        caller to fall back to serial costing.
        """
        if not self._ensure_pool():
            return None, 0, []
        n_chunks = min(max(1, int(jobs)), self._jobs, len(sqls))
        if n_chunks < 2:
            return None, 0, []
        # Contiguous, deterministic chunking: chunk i gets sqls[starts[i]:starts[i+1]].
        base, extra = divmod(len(sqls), n_chunks)
        chunks: list[list[str]] = []
        pos = 0
        for i in range(n_chunks):
            size = base + (1 if i < extra else 0)
            chunks.append(sqls[pos : pos + size])
            pos += size
        try:
            futures = [
                self._executor.submit(_run_chunk, i, chunk, config)
                for i, chunk in enumerate(chunks)
            ]
            results = [f.result() for f in futures]
        except Exception:
            # Pool died (worker crash, unpicklable payload, ...): mark it
            # broken and let the caller cost serially.
            self.close()
            self._broken = True
            return None, 0, []
        results.sort(key=lambda r: r[0])
        costs: list[float] = []
        calls = 0
        exported: list[tuple] = []
        for _i, chunk_costs, chunk_calls, chunk_exported in results:
            costs.extend(chunk_costs)
            calls += chunk_calls
            exported.extend(chunk_exported)
        return costs, calls, exported

    def close(self) -> None:
        if self._executor is not None:
            # wait=True: workers are idle here (all futures resolved), and
            # a non-waiting shutdown races the concurrent.futures atexit
            # hook, which then writes to a closed wakeup pipe (EBADF noise
            # at interpreter exit).
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __del__(self):   # pragma: no cover - interpreter-shutdown ordering
        try:
            self.close()
        except Exception:
            pass
