"""Cost-based query optimizer with what-if (dataless) index support."""

from .access_path import ProbeContext, best_path, enumerate_paths
from .cost_model import affected_rows, index_is_affected, maintenance_cost
from .optimizer import Optimizer
from .plan import AccessPath, JoinStep, Plan
from .query_info import JoinEdge, OrderColumn, QueryInfo, ResolutionError, analyze_query
from .selectivity import atomic_selectivity, constant_value, expr_selectivity
from .switches import DEFAULT_SWITCHES, OptimizerSwitches
from .what_if import CostEvaluator

__all__ = [
    "Optimizer",
    "CostEvaluator",
    "Plan",
    "AccessPath",
    "JoinStep",
    "QueryInfo",
    "JoinEdge",
    "OrderColumn",
    "ResolutionError",
    "analyze_query",
    "enumerate_paths",
    "best_path",
    "ProbeContext",
    "atomic_selectivity",
    "expr_selectivity",
    "constant_value",
    "maintenance_cost",
    "index_is_affected",
    "affected_rows",
    "OptimizerSwitches",
    "DEFAULT_SWITCHES",
]
