"""Selectivity estimation for predicates.

Estimates combine per-column statistics under the usual independence
assumption, with inclusion-exclusion for disjunctions.  Constants are read
from the AST when present; parameterized predicates (``?``) fall back to
uniform estimates, the same behaviour a DBMS exhibits for prepared
statements without parameter peeking.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..obs import counter
from ..sqlparser import ast
from ..sqlparser.predicates import AtomicPredicate, classify_atomic
from ..stats import ColumnStats
from ..stats.column_stats import DEFAULT_RANGE_SELECTIVITY

_SEL_ATOMIC = counter(
    "optimizer.selectivity.calls", "selectivity estimations by entry point"
).labels(entry="atomic")
_SEL_EXPR = counter("optimizer.selectivity.calls").labels(entry="expr")


def _sel_memo_hits():
    # Call-time binding: keeps counting into the registry current after a
    # ``set_registry`` swap (same rationale as the what-if counters).
    return counter(
        "selectivity.memo_hits", "per-(column, op, value) selectivity memo hits"
    ).labels()

#: Floor applied to conjunctions so long predicate chains never hit zero.
MIN_SELECTIVITY = 1e-9

#: Selectivity assumed for predicates we cannot analyze.
UNKNOWN_SELECTIVITY = 0.25

StatsLookup = Callable[[ast.ColumnRef], ColumnStats]


def constant_value(expr: ast.Expr):
    """Extract a Python constant from an expression, or None.

    Handles literals and constant arithmetic; parameters and columns yield
    None (unknown).
    """
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Arithmetic):
        left = constant_value(expr.left)
        right = constant_value(expr.right)
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            try:
                return _apply_arith(expr.op, left, right)
            except ZeroDivisionError:
                return None
    return None


def _apply_arith(op: str, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    if op == "%":
        return left % right
    raise ValueError(f"unknown arithmetic op {op!r}")


def _typed(value) -> tuple:
    """A hashable, type-discriminating memo component (1 vs True vs 1.0)."""
    return (type(value).__name__, value)


def _atomic_memo_key(pred: AtomicPredicate) -> Optional[tuple]:
    """Hashable ``(op, constants...)`` identity of an atomic predicate.

    Two predicates on the same column with the same key are guaranteed to
    estimate identically, so the result can be memoized on the column's
    stats object.  Returns None (no memoization) for shapes whose
    constants cannot be extracted hashably.
    """
    op = pred.op
    expr = pred.expr
    try:
        if isinstance(expr, ast.Comparison):
            value = constant_value(expr.right)
            if value is None:
                value = constant_value(expr.left)
            return (op, _typed(value))
        if isinstance(expr, ast.InList):
            values = tuple(_typed(constant_value(item)) for item in expr.items)
            return (op, len(expr.items), values)
        if isinstance(expr, ast.Between):
            return (
                op,
                _typed(constant_value(expr.low)),
                _typed(constant_value(expr.high)),
            )
        if isinstance(expr, ast.Not):
            inner = expr.item
            if isinstance(inner, ast.Comparison):
                return (op, _typed(constant_value(inner.right)))
            return (op,)
        if op in ("IS NULL", "IS NOT NULL"):
            return (op,)
    except TypeError:        # unhashable constant
        return None
    return None


def _stats_memo(stats: ColumnStats) -> dict:
    """The per-column memo dict, attached lazily to the (frozen) stats.

    ``ColumnStats`` is immutable and replaced wholesale on ANALYZE, so
    the memo's lifetime matches the validity of its entries exactly.
    """
    memo = stats.__dict__.get("_sel_memo")
    if memo is None:
        memo = {}
        object.__setattr__(stats, "_sel_memo", memo)
    return memo


def atomic_selectivity(pred: AtomicPredicate, stats: ColumnStats) -> float:
    """Selectivity of one atomic predicate given its column's stats.

    Memoized per ``(column stats, op, constant value)``: plan enumeration
    re-estimates the same predicate for every candidate configuration of
    every evaluator, and the estimate depends only on the constants and
    the column's statistics.
    """
    key = _atomic_memo_key(pred)
    if key is None:
        return _atomic_selectivity_uncached(pred, stats)
    memo = _stats_memo(stats)
    cached = memo.get(key)
    if cached is not None:
        _sel_memo_hits().inc()
        return cached
    sel = _atomic_selectivity_uncached(pred, stats)
    memo[key] = sel
    return sel


def _atomic_selectivity_uncached(pred: AtomicPredicate, stats: ColumnStats) -> float:
    _SEL_ATOMIC.inc()
    expr = pred.expr
    op = pred.op
    if op in ("=", "<=>"):
        assert isinstance(expr, ast.Comparison)
        value = constant_value(expr.right)
        if value is None:
            value = constant_value(expr.left)
        return stats.eq_selectivity(value)
    if op == "IN":
        assert isinstance(expr, ast.InList)
        values = [constant_value(item) for item in expr.items]
        known = [v for v in values if v is not None]
        return stats.in_selectivity(len(expr.items), known or None)
    if op == "NOT IN":
        assert isinstance(expr, ast.InList)
        return _complement(stats.in_selectivity(len(expr.items)))
    if op in ("<", "<=", ">", ">="):
        assert isinstance(expr, ast.Comparison)
        if isinstance(expr.left, ast.ColumnRef):
            value = constant_value(expr.right)
            return stats.range_selectivity(op, value)
        value = constant_value(expr.left)
        return stats.range_selectivity(op, value)
    if op == "BETWEEN":
        assert isinstance(expr, ast.Between)
        return stats.between_selectivity(
            constant_value(expr.low), constant_value(expr.high)
        )
    if op == "NOT BETWEEN":
        assert isinstance(expr, ast.Between)
        return _complement(
            stats.between_selectivity(
                constant_value(expr.low), constant_value(expr.high)
            )
        )
    if op == "IS NULL":
        return stats.is_null_selectivity()
    if op == "IS NOT NULL":
        return stats.is_null_selectivity(negated=True)
    if op == "LIKE":
        assert isinstance(expr, ast.Comparison)
        return stats.like_selectivity(constant_value(expr.right))
    if op == "NOT LIKE":
        inner = expr.item if isinstance(expr, ast.Not) else expr
        if isinstance(inner, ast.Comparison):
            return _complement(stats.like_selectivity(constant_value(inner.right)))
        return _complement(0.25)
    if op == "!=":
        return _complement(stats.eq_selectivity())
    return UNKNOWN_SELECTIVITY


def combined_range_selectivity(
    preds: Sequence[AtomicPredicate], stats: ColumnStats
) -> float:
    """Selectivity of all range predicates on ONE column, combined.

    One-sided bounds are intersected into an interval before estimation
    (``col >= a AND col < b`` is the b-a span, not the product of two
    half-open estimates).  LIKE predicates multiply in separately.
    Memoized per predicate-set shape on the column's stats (order kept in
    the key so float accumulation stays bit-identical).
    """
    keys = tuple(_atomic_memo_key(p) for p in preds)
    memo_key: Optional[tuple] = None
    if all(k is not None for k in keys):
        memo_key = ("range-combo", keys)
        memo = _stats_memo(stats)
        cached = memo.get(memo_key)
        if cached is not None:
            _sel_memo_hits().inc()
            return cached
    sel = _combined_range_selectivity_uncached(preds, stats)
    if memo_key is not None:
        memo[memo_key] = sel
    return sel


def _combined_range_selectivity_uncached(
    preds: Sequence[AtomicPredicate], stats: ColumnStats
) -> float:
    low = high = None
    low_op = high_op = None
    extra = 1.0
    bounded = False
    for pred in preds:
        expr = pred.expr
        if pred.op in (">", ">="):
            assert isinstance(expr, ast.Comparison)
            value = constant_value(expr.right if isinstance(expr.left, ast.ColumnRef) else expr.left)
            bounded = True
            if value is not None and (low is None or value > low):
                low, low_op = value, pred.op
        elif pred.op in ("<", "<="):
            assert isinstance(expr, ast.Comparison)
            value = constant_value(expr.right if isinstance(expr.left, ast.ColumnRef) else expr.left)
            bounded = True
            if value is not None and (high is None or value < high):
                high, high_op = value, pred.op
        elif pred.op == "BETWEEN":
            assert isinstance(expr, ast.Between)
            lo = constant_value(expr.low)
            hi = constant_value(expr.high)
            bounded = True
            if lo is not None and (low is None or lo > low):
                low, low_op = lo, ">="
            if hi is not None and (high is None or hi < high):
                high, high_op = hi, "<="
        else:
            extra *= atomic_selectivity(pred, stats)
    if not bounded:
        return max(MIN_SELECTIVITY, extra)
    if low is None and high is None:
        # Range predicates with unknown (parameterized) constants.
        return max(MIN_SELECTIVITY, DEFAULT_RANGE_SELECTIVITY * extra)
    if stats.histogram.empty:
        sel = DEFAULT_RANGE_SELECTIVITY
        if low is not None and high is not None:
            sel *= 0.5
        return max(MIN_SELECTIVITY, sel * extra)
    frac = stats.histogram.fraction_between(
        low, high,
        low_inclusive=(low_op != ">"),
        high_inclusive=(high_op != "<"),
    )
    non_null = 1.0 - stats.null_frac
    return max(MIN_SELECTIVITY, min(1.0, frac * non_null) * extra)


def conjunction_selectivity(
    preds: Sequence[AtomicPredicate], lookup: StatsLookup
) -> float:
    """Combined selectivity of a predicate conjunction (independence)."""
    sel = 1.0
    for pred in preds:
        sel *= atomic_selectivity(pred, lookup(pred.column))
    return max(MIN_SELECTIVITY, sel)


def expr_selectivity(expr: Optional[ast.Expr], lookup: StatsLookup) -> float:
    """Selectivity of an arbitrary predicate tree.

    AND multiplies, OR uses inclusion-exclusion, NOT complements; atomic
    leaves use column stats; anything else (join predicates inside OR,
    unsupported forms) contributes :data:`UNKNOWN_SELECTIVITY`.
    """
    if expr is None:
        return 1.0
    _SEL_EXPR.inc()
    if isinstance(expr, ast.And):
        sel = 1.0
        for item in expr.items:
            sel *= expr_selectivity(item, lookup)
        return max(MIN_SELECTIVITY, sel)
    if isinstance(expr, ast.Or):
        miss = 1.0
        for item in expr.items:
            miss *= 1.0 - expr_selectivity(item, lookup)
        return max(MIN_SELECTIVITY, 1.0 - miss)
    if isinstance(expr, ast.Not):
        return _complement(expr_selectivity(expr.item, lookup))
    atomic = classify_atomic(expr)
    if atomic is not None:
        try:
            return atomic_selectivity(atomic, lookup(atomic.column))
        except KeyError:
            return UNKNOWN_SELECTIVITY
    return UNKNOWN_SELECTIVITY


def _complement(sel: float) -> float:
    return min(1.0, max(MIN_SELECTIVITY, 1.0 - sel))
