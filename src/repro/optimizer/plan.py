"""Physical plan representation returned by the optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..catalog import Index
from .query_info import QueryInfo


@dataclass(frozen=True)
class AccessPath:
    """One table access choice, costed for a given probe context.

    ``cost`` and ``rows_out`` are *per execution*: for a driving table that
    is one full scan, for a join inner it is one probe.

    Attributes:
        binding: table binding this path scans.
        table: real table name.
        method: ``seq`` (full scan), ``pk`` (clustered PK range) or
            ``index`` (secondary index scan).
        index: the secondary index used (``index`` method only).
        eq_columns: index columns matched by equality-class predicates.
        range_column: index column bounded by a range predicate, if any.
        index_selectivity: fraction of the table matched by the index
            condition.
        rows_examined: rows touched per execution (index entries + heap).
        rows_out: rows produced per execution after all filters.
        cost: total cost per execution in cost units.
        io_cost: page-I/O component of ``cost`` (drives Eq. 7's benefit
            attribution share).
        covering: no base-table lookups needed.
        order_satisfied: produces rows in the query's ORDER BY order.
        group_satisfied: produces rows clustered by the GROUP BY columns.
    """

    binding: str
    table: str
    method: str
    index: Optional[Index] = None
    eq_columns: tuple[str, ...] = ()
    range_column: Optional[str] = None
    index_selectivity: float = 1.0
    rows_examined: float = 0.0
    rows_out: float = 0.0
    cost: float = 0.0
    io_cost: float = 0.0
    lookup_rows: float = 0.0
    covering: bool = False
    order_satisfied: bool = False
    group_satisfied: bool = False
    skip_scan: bool = False

    @property
    def index_name(self) -> Optional[str]:
        return self.index.name if self.index is not None else None

    def describe(self) -> str:
        """Human-readable one-liner (EXPLAIN-style)."""
        if self.method == "seq":
            return f"SeqScan({self.binding})"
        if self.method == "pk":
            return f"PkRange({self.binding} eq={list(self.eq_columns)})"
        cov = " covering" if self.covering else ""
        return (
            f"IndexScan({self.binding} via {self.index_name}"
            f" eq={list(self.eq_columns)} range={self.range_column}{cov})"
        )


@dataclass(frozen=True)
class JoinStep:
    """One step of a left-deep join pipeline.

    The first step is the driving table scan (``join_method == 'drive'``);
    subsequent steps join one more table via nested-loop index probes
    (``nlj``) or a hash join (``hash``).
    """

    path: AccessPath
    join_method: str            # 'drive' | 'nlj' | 'hash'
    executions: float           # how many times the path runs (probes)
    step_cost: float            # total cost of this step
    no_index_cost: float        # cost had no secondary index been available
    rows_after: float           # cumulative row estimate after this step


@dataclass
class Plan:
    """A complete physical plan with cost decomposition."""

    info: QueryInfo
    steps: list[JoinStep] = field(default_factory=list)
    sort_rows: float = 0.0          # rows through an explicit sort
    rows_out: float = 0.0           # estimated rows returned
    total_cost: float = 0.0
    maintenance_cost: float = 0.0   # DML index maintenance component

    @property
    def used_indexes(self) -> set[str]:
        """Names of all secondary indexes the plan reads."""
        return {
            step.path.index_name
            for step in self.steps
            if step.path.index_name is not None
        }

    def uses_index(self, index: Index | str) -> bool:
        name = index if isinstance(index, str) else index.name
        return name in self.used_indexes

    @property
    def rows_examined(self) -> float:
        """Total rows touched across all steps (monitor's ``rows_read``)."""
        return sum(step.path.rows_examined * step.executions for step in self.steps)

    def io_savings(self) -> dict[str, float]:
        """Per-index cost reduction vs. the best index-free path.

        This is the quantity used to split Eq. 7's gain ``U+`` across the
        indexes a query uses (share ``s_{i,q}`` proportional to the
        reduction in I/O due to each index).
        """
        savings: dict[str, float] = {}
        for step in self.steps:
            name = step.path.index_name
            if name is None:
                continue
            saved = max(0.0, step.no_index_cost - step.step_cost)
            savings[name] = savings.get(name, 0.0) + saved
        return savings

    def describe(self) -> str:
        """Multi-line EXPLAIN-style rendering."""
        lines = []
        for step in self.steps:
            prefix = {"drive": "->", "nlj": " ->> NLJ", "hash": " ->> HASH"}[
                step.join_method
            ]
            lines.append(
                f"{prefix} {step.path.describe()}"
                f" x{step.executions:.0f} cost={step.step_cost:.2f}"
            )
        if self.sort_rows > 0:
            lines.append(f" -> Sort({self.sort_rows:.0f} rows)")
        lines.append(f"total={self.total_cost:.2f} rows={self.rows_out:.0f}")
        return "\n".join(lines)
