"""Optimizer switches (paper Sec. VIII-a).

"Optimizer switches are often used to influence the query optimizer plan
selection. ... Features like index skip scan, index merge intersections
etc. maybe switched off for a subset of databases due to correctness and
performance bugs.  Making the index candidate generation aware of their
values improves the efficiency of the algorithm."

The switches gate optional plan features:

* ``skip_scan`` -- MySQL 8's skip-scan range access: an index whose
  *leading* column has no predicate can still bound a scan when that
  column's NDV is small (one subrange per distinct leading value).
  Off by default, matching the production posture the paper describes.
* ``index_condition_pushdown`` -- evaluate residual key-column predicates
  inside the index before the clustered-PK lookup.
* ``hash_join`` -- allow hash joins as an alternative to nested loops.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OptimizerSwitches:
    """Feature flags consulted by the planner (and by AIM's candidate
    generation, which prunes candidates a switched-on feature makes
    redundant)."""

    skip_scan: bool = False
    skip_scan_max_ndv: int = 200
    index_condition_pushdown: bool = True
    hash_join: bool = True


DEFAULT_SWITCHES = OptimizerSwitches()
