"""Process-wide memoized parse/analyze cache.

Every :class:`~repro.optimizer.what_if.CostEvaluator` used to re-parse
and re-resolve the same workload statements: the advisor, each baseline
and every fleet replica build their own evaluator over (clones of) the
same schema.  Parsing and resolution depend only on the statement text
and the table/column structure of the schema -- never on the index
configuration or the statistics -- so one interned :class:`QueryInfo`
per (schema shape, statement) serves them all.

The cache is a bounded LRU keyed by ``(schema_fingerprint, sql_text)``.
The fingerprint covers table names, column names and primary keys (the
inputs of name resolution); schema *clones* made by
``Database.stats_clone`` share the fingerprint and therefore the cache
entries.  ``QueryInfo`` objects are treated as immutable after analysis.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Optional

from ..catalog import Schema
from ..obs import counter
from ..sqlparser import ast, parse
from .query_info import QueryInfo, analyze_query

__all__ = ["LRUCache", "analyze_cached", "analysis_cache_info", "clear_analysis_cache", "schema_fingerprint"]

#: Process-wide bound on interned analyses.
ANALYSIS_CACHE_SIZE = 4096


# Metric handles resolve at call time so ``set_registry`` swaps keep
# counting into the current registry (see the note in ``what_if``).

def _analyze_hits():
    return counter(
        "analyze.cache_hits", "interned parse/analyze cache hits"
    ).labels()


class LRUCache:
    """A small bounded LRU map (insertion-ordered dict based).

    ``get`` refreshes recency; ``put`` evicts the least recently used
    entry once ``maxsize`` is exceeded and reports it to ``on_evict``.
    """

    __slots__ = ("maxsize", "_data", "_on_evict")

    def __init__(
        self,
        maxsize: int,
        on_evict: Optional[Callable[[Hashable, object], None]] = None,
    ):
        self.maxsize = max(1, maxsize)
        self._data: OrderedDict = OrderedDict()
        self._on_evict = on_evict

    def get(self, key):
        try:
            value = self._data[key]
        except KeyError:
            return None
        self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        data[key] = value
        while len(data) > self.maxsize:
            evicted_key, evicted = data.popitem(last=False)
            if self._on_evict is not None:
                self._on_evict(evicted_key, evicted)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()


def schema_fingerprint(schema: Schema) -> tuple:
    """Structural fingerprint of the name-resolution inputs of *schema*.

    Cached on the schema instance; invalidated when a table is added
    (index DDL does not affect analysis, so index changes keep it).
    """
    cached = getattr(schema, "_analysis_fingerprint", None)
    if cached is not None and cached[0] == len(schema.tables):
        return cached[1]
    fingerprint = tuple(
        (name, tuple(table.column_names), tuple(table.primary_key))
        for name, table in sorted(schema.tables.items())
    )
    # (table count, fingerprint): the count guards against add_table on a
    # schema whose fingerprint was already computed.
    schema._analysis_fingerprint = (len(schema.tables), fingerprint)
    return fingerprint


_cache = LRUCache(ANALYSIS_CACHE_SIZE)
_hits = 0
_misses = 0


def analyze_cached(schema: Schema, stmt) -> QueryInfo:
    """Parse/resolve *stmt* against *schema*, memoized process-wide.

    *stmt* may be a SQL string, a parsed :mod:`~repro.sqlparser.ast`
    statement, or an already-analyzed :class:`QueryInfo` (returned as
    is).
    """
    global _hits, _misses
    if isinstance(stmt, QueryInfo):
        return stmt
    if isinstance(stmt, str):
        text = stmt
        parsed: Optional[ast.Statement] = None
    else:
        parsed = stmt
        text = stmt.to_sql()
    key = (schema_fingerprint(schema), text)
    info = _cache.get(key)
    if info is not None:
        _hits += 1
        _analyze_hits().inc()
        return info
    if parsed is None:
        parsed = parse(text)
    info = analyze_query(parsed, schema)
    _misses += 1
    _cache.put(key, info)
    return info


def analysis_cache_info() -> dict:
    """Hit/miss/size snapshot (for tests and reports)."""
    return {"hits": _hits, "misses": _misses, "size": len(_cache)}


def clear_analysis_cache() -> None:
    """Drop all interned analyses (tests; schema teardown)."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0
