"""Schema-resolved query analysis.

:func:`analyze_query` turns a parsed statement plus a schema into a
:class:`QueryInfo`: table bindings, per-binding filter predicates, the join
graph, grouping/ordering columns and referenced columns.  Both the
optimizer (access path + join order selection) and AIM's candidate
generation (paper Sec. IV, Table I "column usage metadata / structural
metadata") consume this single analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..catalog import CatalogError, Schema
from ..sqlparser import ast
from ..sqlparser.predicates import (
    AtomicPredicate,
    classify_atomic,
    join_predicate,
    split_conjuncts,
)


class ResolutionError(ValueError):
    """Raised when a column or table reference cannot be resolved."""


@dataclass(frozen=True)
class JoinEdge:
    """One equi-join predicate: an edge in the table join graph (Fig 2)."""

    left_binding: str
    left_column: str
    right_binding: str
    right_column: str

    def other(self, binding: str) -> tuple[str, str]:
        """The (binding, column) on the opposite side of *binding*."""
        if binding == self.left_binding:
            return self.right_binding, self.right_column
        if binding == self.right_binding:
            return self.left_binding, self.left_column
        raise KeyError(binding)

    def column_of(self, binding: str) -> str:
        """The column this edge touches on *binding*'s side."""
        if binding == self.left_binding:
            return self.left_column
        if binding == self.right_binding:
            return self.right_column
        raise KeyError(binding)

    def touches(self, binding: str) -> bool:
        return binding in (self.left_binding, self.right_binding)


@dataclass(frozen=True)
class OrderColumn:
    """One resolved ORDER BY column."""

    binding: str
    column: str
    desc: bool


@dataclass
class QueryInfo:
    """Structural metadata of one SELECT/DML statement.

    Attributes:
        stmt: the analyzed statement.
        bindings: binding name (alias or table name) -> real table name.
        filters: per binding, the atomic predicates appearing as top-level
            WHERE/ON conjuncts (sargable and residual alike).
        complex_conjuncts: non-atomic top-level conjuncts (OR trees etc.)
            with the set of bindings they touch.
        join_edges: equi-join predicates between bindings.
        group_by: resolved GROUP BY columns (binding, column), in order.
        order_by: resolved ORDER BY columns.
        referenced: per binding, every column the query touches (select
            list, predicates, grouping, ordering).  Drives covering-index
            construction (``ReferencedColumns`` in Algorithms 4/6/7).
        select_star: the query projects ``*`` (covering is impossible
            unless the index holds every column).
        straight_join: join order is predetermined (MySQL STRAIGHT_JOIN).
        limit: LIMIT value if present (``-1`` for a parameterized limit).
        cache_sql: the statement's canonical SQL text, rendered once at
            analysis time.  What-if caches key on it instead of calling
            ``stmt.to_sql()`` per plan request.
    """

    stmt: ast.Statement
    bindings: dict[str, str] = field(default_factory=dict)
    filters: dict[str, list[AtomicPredicate]] = field(default_factory=dict)
    complex_conjuncts: list[tuple[frozenset[str], ast.Expr]] = field(default_factory=list)
    join_edges: list[JoinEdge] = field(default_factory=list)
    group_by: list[tuple[str, str]] = field(default_factory=list)
    order_by: list[OrderColumn] = field(default_factory=list)
    referenced: dict[str, set[str]] = field(default_factory=dict)
    select_star: bool = False
    straight_join: bool = False
    limit: Optional[int] = None
    cache_sql: str = ""
    _usable_columns: Optional[dict[str, frozenset[str]]] = field(
        default=None, repr=False, compare=False
    )

    def table_of(self, binding: str) -> str:
        return self.bindings[binding]

    def sargable_filters(self, binding: str) -> list[AtomicPredicate]:
        """Filter predicates an index on *binding* could serve."""
        return [p for p in self.filters.get(binding, []) if p.is_sargable]

    def edges_of(self, binding: str) -> list[JoinEdge]:
        return [e for e in self.join_edges if e.touches(binding)]

    def joined_bindings(self, binding: str) -> set[str]:
        """Bindings sharing at least one join predicate with *binding*."""
        return {e.other(binding)[0] for e in self.edges_of(binding)}

    @property
    def is_join_query(self) -> bool:
        return len(self.bindings) > 1

    def usable_columns(self) -> dict[str, frozenset[str]]:
        """Per real table: columns whose presence in an index key can
        possibly change this SELECT's plan.

        Mirrors the access-path enumerator's usefulness test
        (:func:`repro.optimizer.access_path.enumerate_paths` rejects any
        index path that matches no equality/range predicate and satisfies
        no interesting order): an index is a candidate access path only if
        one of its key columns

        * carries a sargable (eq-class or range) filter predicate,
        * sits on a join edge (it may become a probe equality once the
          other side is bound),
        * or appears in GROUP BY / ORDER BY.

        An index on a table the query touches but with *no* usable column
        is therefore invisible to the optimizer for this query, and the
        what-if layer prunes it without an optimizer call.  The map is
        computed once per analyzed statement and shared by every
        evaluator holding this ``QueryInfo``.

        Only meaningful for SELECT statements: DML plans charge
        maintenance for *every* index on the written table, so DML must
        never be pruned by columns.
        """
        if self._usable_columns is None:
            per_table: dict[str, set[str]] = {}
            for binding, table in self.bindings.items():
                cols = per_table.setdefault(table, set())
                for pred in self.filters.get(binding, []):
                    if pred.is_sargable:
                        cols.add(pred.column.column)
                for edge in self.join_edges:
                    if edge.touches(binding):
                        cols.add(edge.column_of(binding))
                for g_binding, column in self.group_by:
                    if g_binding == binding:
                        cols.add(column)
                for item in self.order_by:
                    if item.binding == binding:
                        cols.add(item.column)
            self._usable_columns = {
                table: frozenset(cols) for table, cols in per_table.items()
            }
        return self._usable_columns


def analyze_query(stmt: ast.Statement, schema: Schema) -> QueryInfo:
    """Resolve and analyze *stmt* against *schema*."""
    if isinstance(stmt, ast.Select):
        info = _analyze_select(stmt, schema)
    elif isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
        info = _analyze_dml(stmt, schema)
    else:
        raise TypeError(f"cannot analyze {type(stmt).__name__}")
    info.cache_sql = stmt.to_sql()
    return info


def _analyze_select(stmt: ast.Select, schema: Schema) -> QueryInfo:
    info = QueryInfo(stmt=stmt)
    for ref in stmt.all_table_refs():
        table = schema.table(ref.name)   # raises CatalogError if unknown
        if ref.binding in info.bindings:
            raise ResolutionError(f"duplicate table binding {ref.binding!r}")
        info.bindings[ref.binding] = table.name
        info.filters[ref.binding] = []
        info.referenced[ref.binding] = set()
    info.straight_join = any(j.kind == "STRAIGHT" for j in stmt.joins)

    resolver = _Resolver(info, schema)

    # WHERE plus every JOIN ... ON condition contribute conjuncts alike.
    conjuncts = split_conjuncts(stmt.where)
    for join in stmt.joins:
        conjuncts.extend(split_conjuncts(join.condition))
    for conjunct in conjuncts:
        resolver.add_conjunct(conjunct)

    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            info.select_star = True
            if item.expr.table:
                binding = resolver.resolve_binding(item.expr.table)
                table = schema.table(info.bindings[binding])
                info.referenced[binding] |= set(table.column_names)
            else:
                for binding, table_name in info.bindings.items():
                    info.referenced[binding] |= set(
                        schema.table(table_name).column_names
                    )
            continue
        resolver.note_references(item.expr)

    for expr in stmt.group_by:
        ref = resolver.resolve_column_expr(expr)
        if ref is not None:
            info.group_by.append(ref)
    if stmt.having is not None:
        resolver.note_references(stmt.having)
    for order_item in stmt.order_by:
        ref = resolver.resolve_column_expr(order_item.expr)
        if ref is not None:
            info.order_by.append(OrderColumn(ref[0], ref[1], order_item.desc))
    info.limit = stmt.limit
    return info


def _analyze_dml(stmt: ast.Statement, schema: Schema) -> QueryInfo:
    if isinstance(stmt, ast.Insert):
        table_ref, where = stmt.table, None
    elif isinstance(stmt, ast.Update):
        table_ref, where = stmt.table, stmt.where
    else:
        assert isinstance(stmt, ast.Delete)
        table_ref, where = stmt.table, stmt.where
    info = QueryInfo(stmt=stmt)
    table = schema.table(table_ref.name)
    binding = table_ref.binding
    info.bindings[binding] = table.name
    info.filters[binding] = []
    info.referenced[binding] = set()
    resolver = _Resolver(info, schema)
    for conjunct in split_conjuncts(where):
        resolver.add_conjunct(conjunct)
    if isinstance(stmt, ast.Update):
        for col, expr in stmt.assignments:
            info.referenced[binding].add(col)
            resolver.note_references(expr)
    if isinstance(stmt, ast.Insert):
        info.referenced[binding] |= set(stmt.columns)
    return info


class _Resolver:
    """Resolves column references to (binding, column) pairs."""

    def __init__(self, info: QueryInfo, schema: Schema):
        self._info = info
        self._schema = schema

    def resolve_binding(self, name: str) -> str:
        if name in self._info.bindings:
            return name
        raise ResolutionError(f"unknown table binding {name!r}")

    def resolve(self, ref: ast.ColumnRef) -> tuple[str, str]:
        """Resolve a column reference to (binding, column)."""
        if ref.table is not None:
            binding = self.resolve_binding(ref.table)
            table = self._schema.table(self._info.bindings[binding])
            if not table.has_column(ref.column):
                raise ResolutionError(
                    f"no column {ref.column!r} in {binding} ({table.name})"
                )
            return binding, ref.column
        matches = [
            binding
            for binding, table_name in self._info.bindings.items()
            if self._schema.table(table_name).has_column(ref.column)
        ]
        if not matches:
            raise ResolutionError(f"unresolvable column {ref.column!r}")
        if len(matches) > 1:
            raise ResolutionError(
                f"ambiguous column {ref.column!r}: matches {matches}"
            )
        return matches[0], ref.column

    def resolve_column_expr(self, expr: ast.Expr) -> Optional[tuple[str, str]]:
        """Resolve a bare-column expression; notes refs for anything else."""
        if isinstance(expr, ast.ColumnRef):
            binding, column = self.resolve(expr)
            self._info.referenced[binding].add(column)
            return binding, column
        self.note_references(expr)
        return None

    def note_references(self, expr: ast.Expr) -> None:
        """Record every column an expression touches."""
        for ref in ast.column_refs(expr):
            binding, column = self.resolve(ref)
            self._info.referenced[binding].add(column)

    def add_conjunct(self, conjunct: ast.Expr) -> None:
        """Classify one top-level conjunct into the QueryInfo buckets."""
        info = self._info
        self.note_references(conjunct)
        joined = join_predicate(conjunct)
        if joined is not None:
            left_b, left_c = self.resolve(joined[0])
            right_b, right_c = self.resolve(joined[1])
            if left_b != right_b:
                info.join_edges.append(JoinEdge(left_b, left_c, right_b, right_c))
                return
            # Same binding on both sides: treat as a residual predicate.
        atomic = classify_atomic(conjunct)
        if atomic is not None:
            binding, column = self.resolve(atomic.column)
            resolved = AtomicPredicate(
                ast.ColumnRef(binding, column), atomic.op, atomic.expr
            )
            info.filters[binding].append(resolved)
            return
        touched = frozenset(self.resolve(r)[0] for r in ast.column_refs(conjunct))
        info.complex_conjuncts.append((touched, conjunct))
