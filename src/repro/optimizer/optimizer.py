"""The optimizer facade.

:class:`Optimizer` is the single entry point every advisor and the
executor use: ``explain(statement)`` -> :class:`Plan`.  It plans SELECTs
through the join-order planner and DML through the SELECT planner (to
locate affected rows) plus the maintenance cost model.

The facade counts optimizer invocations (``calls``) -- the metric that
dominates advisor runtime in practice (Papadomanolakis et al.: index
selection tools spend ~90% of their time in the optimizer; paper
Sec. VIII-a) and that Fig 4b/4d's runtime comparison hinges on.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence, Union

from ..catalog import Index
from ..engine import Database
from ..obs import counter, histogram
from ..sqlparser import ast, parse
from .cost_model import affected_rows, dml_base_cost, maintenance_cost
from .join_order import SelectPlanner
from .plan import JoinStep, Plan
from .query_info import QueryInfo, analyze_query

Statement = Union[str, ast.Statement, QueryInfo]

# Bound metric children: one dict lookup at import, one add per event.
_CALLS_SELECT = counter(
    "optimizer.calls", "optimizer invocations by statement kind"
).labels(kind="select")
_CALLS_DML = counter("optimizer.calls").labels(kind="dml")
_PLAN_COST = histogram(
    "optimizer.plan_cost", "total estimated cost per produced plan"
).labels()


class Optimizer:
    """Cost-based optimizer over a :class:`~repro.engine.Database`."""

    def __init__(self, db: Database):
        self.db = db
        self.calls = 0

    def analyze(self, stmt: Statement) -> QueryInfo:
        """Parse/resolve a statement into QueryInfo (idempotent)."""
        if isinstance(stmt, QueryInfo):
            return stmt
        if isinstance(stmt, str):
            stmt = parse(stmt)
        return analyze_query(stmt, self.db.schema)

    def explain(
        self,
        stmt: Statement,
        extra_indexes: Sequence[Index] = (),
        materialized_only: bool = False,
    ) -> Plan:
        """Plan a statement under the current configuration plus
        *extra_indexes* (typically dataless candidates).

        With *materialized_only* the plan may only use indexes that
        physically exist -- the executor's planning mode (a dataless index
        has no data to scan).
        """
        self.calls += 1
        info = self.analyze(stmt)
        if materialized_only:
            extra_indexes = [idx for idx in extra_indexes if not idx.dataless]
        if isinstance(info.stmt, ast.Select):
            _CALLS_SELECT.inc()
            planner = SelectPlanner(
                self.db.schema,
                self.db.stats,
                self.db.params,
                info,
                extra_indexes,
                materialized_only=materialized_only,
                switches=self.db.switches,
            )
            plan = planner.plan()
        else:
            _CALLS_DML.inc()
            plan = self._explain_dml(info, extra_indexes)
        _PLAN_COST.observe(plan.total_cost)
        return plan

    def cost(self, stmt: Statement, extra_indexes: Sequence[Index] = ()) -> float:
        """Total estimated cost of a statement."""
        return self.explain(stmt, extra_indexes).total_cost

    def _explain_dml(self, info: QueryInfo, extra_indexes: Sequence[Index]) -> Plan:
        stmt = info.stmt
        schema, stats, params = self.db.schema, self.db.stats, self.db.params
        rows = affected_rows(info, schema, stats)
        steps: list[JoinStep] = []
        locate_cost = 0.0
        if isinstance(stmt, (ast.Update, ast.Delete)) and not isinstance(stmt, ast.Insert):
            select_info = self._locator_info(info)
            planner = SelectPlanner(schema, stats, params, select_info, extra_indexes)
            locate_plan = planner.plan()
            steps = locate_plan.steps
            locate_cost = locate_plan.total_cost

        base = dml_base_cost(info, schema, stats, params, locate_cost, rows)
        table_name = next(iter(info.bindings.values()))
        all_indexes = {
            idx.name: idx for idx in self.db.schema.indexes(table=table_name)
        }
        for idx in extra_indexes:
            if idx.table == table_name:
                all_indexes.setdefault(idx.name, idx)
        maintenance = sum(
            maintenance_cost(info, idx, schema, stats, params, rows)
            for idx in all_indexes.values()
        )
        return Plan(
            info=info,
            steps=steps,
            rows_out=0.0,
            total_cost=base + maintenance,
            maintenance_cost=maintenance,
        )

    def _locator_info(self, info: QueryInfo) -> QueryInfo:
        """Re-cast a DML statement as the SELECT that finds its rows."""
        stmt = info.stmt
        assert isinstance(stmt, (ast.Update, ast.Delete))
        select = ast.Select(
            items=(ast.SelectItem(ast.Star()),),
            tables=(stmt.table,),
            where=stmt.where,
        )
        return analyze_query(select, self.db.schema)
