"""Join order selection and full SELECT planning.

The planner builds left-deep pipelines: a driving table scan followed by
one join step per additional table, each executed as nested-loop probes
into the cheapest inner access path (which is where secondary indexes on
join columns pay off) or as a hash join against a full inner scan.

Join order enumeration uses dynamic programming over binding subsets up to
:data:`DP_LIMIT` tables and a greedy heuristic beyond -- mirroring how
production optimizers bound their search (paper Sec. IV-C: "only a small
number of join orders are even considered by the optimizer").
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Optional, Sequence

from ..catalog import Index, Schema, Table
from ..engine.pages import CostParams
from ..obs import counter
from ..sqlparser import ast
from ..stats import ColumnStats, StatsCatalog
from .access_path import ProbeContext, best_no_index_cost, best_path, enumerate_paths
from .plan import AccessPath, JoinStep, Plan
from .query_info import QueryInfo
from .selectivity import MIN_SELECTIVITY, expr_selectivity
from .switches import DEFAULT_SWITCHES, OptimizerSwitches

#: Maximum bindings handled by exhaustive DP; larger queries go greedy.
DP_LIMIT = 10

_ENUM = counter(
    "optimizer.join_enumeration", "join-order strategy per planned join query"
)
_ENUM_DP = _ENUM.labels(strategy="dp")
_ENUM_GREEDY = _ENUM.labels(strategy="greedy")
_ENUM_STRAIGHT = _ENUM.labels(strategy="straight")


class SelectPlanner:
    """Plans one SELECT statement against a schema + statistics snapshot."""

    def __init__(
        self,
        schema: Schema,
        stats: StatsCatalog,
        params: CostParams,
        info: QueryInfo,
        extra_indexes: Sequence[Index] = (),
        materialized_only: bool = False,
        switches: OptimizerSwitches = DEFAULT_SWITCHES,
    ):
        self.schema = schema
        self.stats = stats
        self.params = params
        self.switches = switches
        self.info = info
        self._indexes: dict[str, list[Index]] = {}
        available = list(schema.indexes()) + list(extra_indexes)
        if materialized_only:
            available = [idx for idx in available if not idx.dataless]
        for index in available:
            self._indexes.setdefault(index.table, [])
            if all(existing.name != index.name for existing in self._indexes[index.table]):
                self._indexes[index.table].append(index)
        self._path_cache: dict[tuple, list[AccessPath]] = {}

    # -- public entry ---------------------------------------------------------

    def plan(self) -> Plan:
        bindings = list(self.info.bindings)
        if len(bindings) == 1:
            return self._single_table_plan(bindings[0])
        return self._join_plan(bindings)

    # -- helpers --------------------------------------------------------------

    def _table(self, binding: str) -> Table:
        return self.schema.table(self.info.bindings[binding])

    def _table_stats(self, binding: str):
        return self.stats.table(self.info.bindings[binding])

    def _column_stats(self, ref: ast.ColumnRef) -> ColumnStats:
        """Stats lookup for selectivity of complex conjuncts."""
        if ref.table is not None and ref.table in self.info.bindings:
            return self._table_stats(ref.table).column(ref.column)
        for binding, table_name in self.info.bindings.items():
            if self.schema.table(table_name).has_column(ref.column):
                return self._table_stats(binding).column(ref.column)
        return ColumnStats()

    def _residual_selectivity(self, binding: str) -> float:
        """Selectivity of complex conjuncts local to one binding."""
        sel = 1.0
        for touched, expr in self.info.complex_conjuncts:
            if touched == frozenset({binding}):
                sel *= expr_selectivity(expr, self._column_stats)
        return sel

    def _cross_binding_selectivity(self, present: frozenset[str], added: str) -> float:
        """Selectivity of multi-binding complex conjuncts that become fully
        bound when *added* joins the *present* set."""
        now = present | {added}
        sel = 1.0
        for touched, expr in self.info.complex_conjuncts:
            if len(touched) > 1 and touched <= now and not touched <= present:
                sel *= expr_selectivity(expr, self._column_stats)
        return sel

    def _paths(
        self,
        binding: str,
        probe: ProbeContext,
        with_order: bool,
    ) -> list[AccessPath]:
        key = (binding, tuple(sorted(probe.eq_selectivities.items())), with_order)
        if key in self._path_cache:
            return self._path_cache[key]
        order_cols = ()
        group_cols: tuple[str, ...] = ()
        limit = None
        if with_order:
            if self.info.order_by and all(
                o.binding == binding for o in self.info.order_by
            ):
                order_cols = tuple(self.info.order_by)
            if self.info.group_by and all(
                b == binding for b, _ in self.info.group_by
            ):
                group_cols = tuple(c for _, c in self.info.group_by)
            if len(self.info.bindings) == 1:
                limit = self.info.limit
        paths = enumerate_paths(
            self._table(binding),
            self._table_stats(binding),
            self.params,
            self.info.filters.get(binding, []),
            self._indexes.get(self.info.bindings[binding], []),
            set(self.info.referenced.get(binding, set())),
            probe=probe,
            residual_selectivity=self._residual_selectivity(binding),
            order_cols=order_cols,
            group_cols=group_cols,
            limit=limit,
            switches=self.switches,
        )
        paths = [replace(p, binding=binding) for p in paths]
        self._path_cache[key] = paths
        return paths

    def _join_edge_selectivity(self, binding: str, other: str) -> dict[str, float]:
        """Per-probe eq selectivities on *binding* from edges to *other*."""
        out: dict[str, float] = {}
        stats = self._table_stats(binding)
        for edge in self.info.join_edges:
            if not edge.touches(binding):
                continue
            other_binding, _ = edge.other(binding)
            if other_binding != other:
                continue
            col = edge.column_of(binding)
            sel = 1.0 / max(1, stats.column(col).ndv)
            out[col] = min(sel, out.get(col, 1.0))
        return out

    def _probe_context(self, binding: str, bound: frozenset[str]) -> ProbeContext:
        """Probe context for *binding* when *bound* bindings are available."""
        merged: dict[str, float] = {}
        for other in bound:
            for col, sel in self._join_edge_selectivity(binding, other).items():
                merged[col] = min(sel, merged.get(col, 1.0))
        return ProbeContext(merged)

    def _edge_result_selectivity(self, binding: str, bound: frozenset[str]) -> float:
        """Cardinality selectivity of all join edges binding<->bound."""
        sel = 1.0
        seen: set[tuple] = set()
        for edge in self.info.join_edges:
            if not edge.touches(binding):
                continue
            other, other_col = edge.other(binding)
            if other not in bound:
                continue
            key = (edge.left_binding, edge.left_column, edge.right_binding, edge.right_column)
            if key in seen:
                continue
            seen.add(key)
            my_col = edge.column_of(binding)
            my_ndv = self._table_stats(binding).column(my_col).ndv
            other_ndv = self._table_stats(other).column(other_col).ndv
            sel *= 1.0 / max(1, my_ndv, other_ndv)
        return sel

    def _filtered_rows(self, binding: str) -> float:
        paths = self._paths(binding, ProbeContext.empty(), with_order=False)
        return max(MIN_SELECTIVITY, paths[0].rows_out)

    # -- single table ---------------------------------------------------------

    def _single_table_plan(self, binding: str) -> Plan:
        paths = self._paths(binding, ProbeContext.empty(), with_order=True)
        chosen = self._pick_with_order(paths)
        step = JoinStep(
            path=chosen,
            join_method="drive",
            executions=1.0,
            step_cost=chosen.cost,
            no_index_cost=best_no_index_cost(paths),
            rows_after=chosen.rows_out,
        )
        return self._finalize([step], chosen.rows_out)

    def _pick_with_order(self, paths: list[AccessPath]) -> AccessPath:
        """Pick min total cost accounting for avoided sorts."""
        info = self.info
        need_group = bool(info.group_by)
        need_order = bool(info.order_by)

        def effective(path: AccessPath) -> float:
            cost = path.cost
            rows = path.rows_out
            if need_group and not path.group_satisfied:
                cost += _sort_cost(self.params, rows)
            if need_order and not path.order_satisfied and not need_group:
                cost += _sort_cost(self.params, rows)
            return cost

        return min(paths, key=lambda p: (effective(p), p.method == "seq"))

    # -- joins ------------------------------------------------------------------

    def _join_plan(self, bindings: list[str]) -> Plan:
        if self.info.straight_join:
            _ENUM_STRAIGHT.inc()
            order = bindings
            steps, rows = self._build_pipeline(order)
            return self._finalize(steps, rows)
        if len(bindings) <= DP_LIMIT:
            _ENUM_DP.inc()
            order = self._dp_order(bindings)
        else:
            _ENUM_GREEDY.inc()
            order = self._greedy_order(bindings)
        steps, rows = self._build_pipeline(order)
        plan = self._finalize(steps, rows)

        # Interesting-order alternative: drive from the binding that can
        # satisfy ORDER BY and skip the final sort.
        if self.info.order_by:
            order_bindings = {o.binding for o in self.info.order_by}
            if len(order_bindings) == 1:
                driver = next(iter(order_bindings))
                alt_order = [driver] + self._greedy_tail(driver, bindings)
                alt_steps, alt_rows = self._build_pipeline(
                    alt_order, driver_with_order=True
                )
                alt_plan = self._finalize(alt_steps, alt_rows)
                if alt_plan.total_cost < plan.total_cost:
                    return alt_plan
        return plan

    def _dp_order(self, bindings: list[str]) -> list[str]:
        """Selinger-style DP over subsets; returns the best join order."""
        best: dict[frozenset, tuple[float, float, list[str]]] = {}
        for b in bindings:
            paths = self._paths(b, ProbeContext.empty(), with_order=False)
            chosen = best_path(paths)
            best[frozenset([b])] = (chosen.cost, max(1.0, chosen.rows_out), [b])
        all_set = frozenset(bindings)
        for size in range(2, len(bindings) + 1):
            for subset, (cost, rows, order) in list(best.items()):
                if len(subset) != size - 1:
                    continue
                for b in bindings:
                    if b in subset:
                        continue
                    # Prefer connected expansions; allow cross products only
                    # when nothing is connected (handled by fallback below).
                    step_cost, step_rows = self._join_step_estimate(b, subset, rows)
                    new_set = subset | {b}
                    total = cost + step_cost
                    entry = best.get(new_set)
                    if entry is None or total < entry[0]:
                        best[new_set] = (total, step_rows, order + [b])
        return best[all_set][2]

    def _greedy_order(self, bindings: list[str]) -> list[str]:
        """Greedy order: smallest filtered driver, then cheapest expansion."""
        driver = min(bindings, key=self._filtered_rows)
        return [driver] + self._greedy_tail(driver, bindings)

    def _greedy_tail(self, driver: str, bindings: list[str]) -> list[str]:
        remaining = [b for b in bindings if b != driver]
        order: list[str] = []
        current = frozenset([driver])
        rows = self._filtered_rows(driver)
        while remaining:
            connected = [
                b for b in remaining if self.info.joined_bindings(b) & current
            ]
            pool = connected or remaining
            scored = []
            for b in pool:
                step_cost, step_rows = self._join_step_estimate(b, current, rows)
                scored.append((step_cost, step_rows, b))
            scored.sort(key=lambda t: (t[0], t[2]))
            _, rows, chosen = scored[0]
            order.append(chosen)
            remaining.remove(chosen)
            current = current | {chosen}
        return order

    def _join_step_estimate(
        self, binding: str, bound: frozenset[str], outer_rows: float
    ) -> tuple[float, float]:
        """(cost, resulting rows) of joining *binding* to the bound set."""
        probe = self._probe_context(binding, bound)
        paths = self._paths(binding, probe, with_order=False)
        inner = best_path(paths)
        nlj_cost = outer_rows * inner.cost
        hash_cost = self._hash_join_cost(binding, outer_rows)
        cost = min(nlj_cost, hash_cost)
        rows = self._result_rows(binding, bound, outer_rows)
        return cost, rows

    def _result_rows(
        self, binding: str, bound: frozenset[str], outer_rows: float
    ) -> float:
        filtered = self._filtered_rows(binding)
        join_sel = self._edge_result_selectivity(binding, bound)
        cross_sel = self._cross_binding_selectivity(bound, binding)
        rows = outer_rows * filtered * join_sel * cross_sel
        return max(MIN_SELECTIVITY, rows)

    def _hash_join_cost(self, binding: str, outer_rows: float) -> float:
        """Build a hash table from the (filtered) inner, probe with outer."""
        if not self.switches.hash_join:
            return math.inf   # switched off (MySQL < 8.0.18 posture)
        if not self.info.joined_bindings(binding):
            return math.inf   # no equi-join key: cross product via NLJ only
        paths = self._paths(binding, ProbeContext.empty(), with_order=False)
        scan = best_path(paths)
        build = scan.cost + scan.rows_out * self.params.cpu_tuple_cost
        probe = outer_rows * self.params.cpu_tuple_cost * 2
        return build + probe

    def _build_pipeline(
        self, order: list[str], driver_with_order: bool = False
    ) -> tuple[list[JoinStep], float]:
        steps: list[JoinStep] = []
        driver = order[0]
        paths = self._paths(driver, ProbeContext.empty(), with_order=True)
        if driver_with_order:
            ordered = [p for p in paths if p.order_satisfied]
            chosen = best_path(ordered) if ordered else self._pick_with_order(paths)
        else:
            chosen = self._pick_with_order(paths)
        rows = max(MIN_SELECTIVITY, chosen.rows_out)
        steps.append(
            JoinStep(
                path=chosen, join_method="drive", executions=1.0,
                step_cost=chosen.cost, no_index_cost=best_no_index_cost(paths),
                rows_after=rows,
            )
        )
        current = frozenset([driver])
        for binding in order[1:]:
            probe = self._probe_context(binding, current)
            paths = self._paths(binding, probe, with_order=False)
            inner = best_path(paths)
            nlj_cost = rows * inner.cost
            hash_cost = self._hash_join_cost(binding, rows)
            next_rows = self._result_rows(binding, current, rows)
            if nlj_cost <= hash_cost:
                no_index = rows * best_no_index_cost(paths)
                steps.append(
                    JoinStep(
                        path=inner, join_method="nlj", executions=rows,
                        step_cost=nlj_cost, no_index_cost=no_index,
                        rows_after=next_rows,
                    )
                )
            else:
                scan_paths = self._paths(binding, ProbeContext.empty(), with_order=False)
                scan = best_path(scan_paths)
                steps.append(
                    JoinStep(
                        path=scan, join_method="hash", executions=1.0,
                        step_cost=hash_cost,
                        no_index_cost=max(hash_cost, best_no_index_cost(scan_paths)),
                        rows_after=next_rows,
                    )
                )
            rows = next_rows
            current = current | {binding}
        return steps, rows

    # -- finalization ------------------------------------------------------------

    def _finalize(self, steps: list[JoinStep], rows: float) -> Plan:
        info = self.info
        total = sum(step.step_cost for step in steps)
        sort_rows = 0.0
        rows_out = rows

        order_satisfied = steps[0].path.order_satisfied and all(
            s.join_method != "hash" for s in steps[1:]
        )
        group_satisfied = steps[0].path.group_satisfied and len(steps) == 1

        if info.group_by:
            groups = self._group_cardinality(rows)
            if not group_satisfied:
                sort_rows += rows
                total += _sort_cost(self.params, rows)
            total += rows * self.params.cpu_operator_cost   # aggregation
            rows_out = groups
            if isinstance(info.stmt, ast.Select) and info.stmt.having is not None:
                rows_out = max(1.0, rows_out * 0.25)
        if info.order_by and not order_satisfied:
            # GROUP BY output is already sorted when sort-based grouping ran.
            if not (info.group_by and not group_satisfied):
                sort_rows += rows_out
                total += _sort_cost(self.params, rows_out)
        if info.limit and info.limit > 0:
            rows_out = min(rows_out, float(info.limit))
        total += rows_out * self.params.cpu_tuple_cost   # emit to client
        return Plan(
            info=info, steps=steps, sort_rows=sort_rows,
            rows_out=rows_out, total_cost=total,
        )

    def _group_cardinality(self, rows: float) -> float:
        by_binding: dict[str, list[str]] = {}
        for binding, column in self.info.group_by:
            by_binding.setdefault(binding, []).append(column)
        groups = 1.0
        for binding, cols in by_binding.items():
            groups *= self._table_stats(binding).distinct_values(tuple(cols))
        return max(1.0, min(groups, rows))


def _sort_cost(params: CostParams, rows: float) -> float:
    if rows <= 1:
        return 0.0
    return params.sort_unit_cost * rows * math.log2(rows)
