"""What-if (hypothetical configuration) cost evaluation with caching.

:class:`CostEvaluator` is the service every index-selection algorithm
drives: *what would query q cost under index configuration X?*  Indexes
are evaluated dataless -- catalog + statistics only, exactly the
AutoAdmin "what-if" / HypoPG mechanism the paper builds on (Sec. III-A4).

Costs are cached per (query, relevant index subset): a configuration's
indexes on tables the query never touches cannot change its plan, so the
cache key projects the configuration onto the query's tables.  This
mirrors the cost-caching of the Kossmann et al. evaluation framework and
keeps repeated evaluations of overlapping configurations cheap.
"""

from __future__ import annotations

from typing import Collection, Iterable, Optional

from ..catalog import Index
from ..engine import Database
from ..obs import counter, histogram
from .optimizer import Optimizer, Statement
from .plan import Plan
from .query_info import QueryInfo

# Metric handles are resolved at call time: binding them at import time
# would pin them to whatever registry was current when this module first
# loaded, silently diverging from ``CostEvaluator.cache_hits`` after a
# ``set_registry`` swap.


def _whatif_evals():
    return counter(
        "whatif.evaluations", "what-if plan requests (cached + uncached)"
    ).labels()


def _whatif_hits():
    return counter("whatif.cache_hits", "what-if plan cache hits").labels()


def _whatif_cost():
    return histogram(
        "whatif.plan_cost", "plan costs of uncached what-if evaluations"
    ).labels()


class CostEvaluator:
    """Cached what-if cost evaluation over a database.

    Args:
        db: the database (stats are shared; schema may be cloned).
        include_schema_indexes: when False (the default for advisor runs),
            configurations are evaluated against a bare schema -- only the
            clustered PKs plus the hypothetical configuration exist.  When
            True, the database's current secondary indexes stay visible
            (continuous-tuning mode).
    """

    def __init__(self, db: Database, include_schema_indexes: bool = False):
        if include_schema_indexes:
            self._db = db
        else:
            self._db = db.stats_clone(name=f"{db.name}-whatif")
            for index in self._db.schema.indexes():
                self._db.schema.drop_index(index)
        self.optimizer = Optimizer(self._db)
        self._plan_cache: dict[tuple[str, frozenset[str]], Plan] = {}
        self._info_cache: dict[str, QueryInfo] = {}
        self.cache_hits = 0

    @property
    def optimizer_calls(self) -> int:
        """Number of *uncached* optimizer invocations so far."""
        return self.optimizer.calls

    def analyze(self, stmt: Statement) -> QueryInfo:
        if isinstance(stmt, QueryInfo):
            return stmt
        key = stmt if isinstance(stmt, str) else stmt.to_sql()
        if key not in self._info_cache:
            self._info_cache[key] = self.optimizer.analyze(stmt)
        return self._info_cache[key]

    def plan(self, stmt: Statement, config: Collection[Index] = ()) -> Plan:
        """Plan *stmt* under hypothetical configuration *config*."""
        info = self.analyze(stmt)
        tables = set(info.bindings.values())
        relevant = [idx.as_dataless() for idx in config if idx.table in tables]
        key = (info.stmt.to_sql(), frozenset(idx.name for idx in relevant))
        _whatif_evals().inc()
        cached = self._plan_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            _whatif_hits().inc()
            return cached
        plan = self.optimizer.explain(info, extra_indexes=relevant)
        self._plan_cache[key] = plan
        _whatif_cost().observe(plan.total_cost)
        return plan

    def cost(self, stmt: Statement, config: Collection[Index] = ()) -> float:
        return self.plan(stmt, config).total_cost

    def workload_cost(
        self,
        queries: Iterable[tuple[Statement, float]],
        config: Collection[Index] = (),
    ) -> float:
        """Weighted workload cost: ``sum w_q * cost(q, X)`` (Eq. 1)."""
        return sum(weight * self.cost(stmt, config) for stmt, weight in queries)

    def used_subset(
        self, stmt: Statement, config: Collection[Index]
    ) -> list[Index]:
        """The subset of *config* the plan for *stmt* actually uses."""
        plan = self.plan(stmt, config)
        used = plan.used_indexes
        return [idx for idx in config if idx.name in used]
