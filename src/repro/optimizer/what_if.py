"""What-if (hypothetical configuration) cost evaluation with caching.

:class:`CostEvaluator` is the service every index-selection algorithm
drives: *what would query q cost under index configuration X?*  Indexes
are evaluated dataless -- catalog + statistics only, exactly the
AutoAdmin "what-if" / HypoPG mechanism the paper builds on (Sec. III-A4).

The evaluator "rarely consults the optimizer" (paper Sec. III) through a
tiered fast path:

* **Relevance pruning** (tier 0): a configuration is projected onto the
  indexes that can possibly serve the query -- same table AND at least
  one key column carrying a sargable predicate, join edge, GROUP BY or
  ORDER BY column (:meth:`QueryInfo.usable_columns`).  An index the
  access-path enumerator would reject anyway short-circuits to the
  bare-config plan with zero optimizer calls.  DML is never
  column-pruned (every index on the written table pays maintenance).
* **L1 exact cache**: bounded LRU keyed by ``(statement SQL, structural
  keys of the relevant subset)``.
* **L2 canonical cache** (SELECT only): the AutoAdmin atomic-
  configuration rule.  When planning relevant set ``C`` produced plan
  ``P`` using subset ``used(C)``, any lookup ``C'`` with
  ``used(C) ⊆ C' ⊆ C`` is served ``P`` without an optimizer call: every
  path available under ``C'`` was available under ``C`` (``C' ⊆ C``), so
  ``P`` -- optimal under ``C`` and feasible under ``C'``
  (``used(C) ⊆ C'``) -- is optimal under ``C'`` too.

Both tiers are bounded; evictions and hits are exported as ``whatif.*``
counters (docs/OBSERVABILITY.md).  Set ``REPRO_WHATIF_FASTPATH=0`` to
fall back to the seed behaviour (exact table-projected cache only).
"""

from __future__ import annotations

import os
from typing import Collection, Iterable, Optional

from ..catalog import Index
from ..engine import Database
from ..obs import counter, histogram, profile
from ..sqlparser import ast
from .analysis_cache import LRUCache, analyze_cached
from .optimizer import Optimizer, Statement
from .plan import Plan
from .query_info import QueryInfo

#: Bound on the per-evaluator L1 exact plan cache.
DEFAULT_PLAN_CACHE_SIZE = 8192

#: Bound on canonical entries kept per statement (L2).
CANONICAL_ENTRIES_PER_STATEMENT = 16

# Metric handles are resolved at call time: binding them at import time
# would pin them to whatever registry was current when this module first
# loaded, silently diverging from ``CostEvaluator.cache_hits`` after a
# ``set_registry`` swap.


def _whatif_evals():
    return counter(
        "whatif.evaluations", "what-if plan requests (cached + uncached)"
    ).labels()


def _whatif_hits():
    return counter("whatif.cache_hits", "what-if plan cache hits").labels()


def _whatif_canonical_hits():
    return counter(
        "whatif.canonical_hits",
        "what-if hits served by the canonical used(C)⊆C'⊆C rule",
    ).labels()


def _whatif_evictions():
    return counter(
        "whatif.cache_evictions", "what-if plan cache LRU evictions"
    ).labels()


def _whatif_cost():
    return histogram(
        "whatif.plan_cost", "plan costs of uncached what-if evaluations"
    ).labels()


def fast_path_default() -> bool:
    """The process default for the what-if fast path (env-overridable)."""
    return os.environ.get("REPRO_WHATIF_FASTPATH", "1") != "0"


class CostEvaluator:
    """Cached what-if cost evaluation over a database.

    Args:
        db: the database (stats are shared; schema may be cloned).
        include_schema_indexes: when False (the default for advisor runs),
            configurations are evaluated against a bare schema -- only the
            clustered PKs plus the hypothetical configuration exist.  When
            True, the database's current secondary indexes stay visible
            (continuous-tuning mode).
        fast_path: enable relevance pruning + the canonical cache tier.
            ``None`` reads the ``REPRO_WHATIF_FASTPATH`` env default
            (:func:`fast_path_default`); False reproduces the seed's
            exact-cache-only behaviour.
        jobs: default process fan-out for :meth:`workload_cost` (1 =
            serial; the pool is created lazily on first parallel call).
        max_cache_entries: L1 LRU bound.
    """

    def __init__(
        self,
        db: Database,
        include_schema_indexes: bool = False,
        fast_path: Optional[bool] = None,
        jobs: int = 1,
        max_cache_entries: int = DEFAULT_PLAN_CACHE_SIZE,
    ):
        self._include_schema_indexes = include_schema_indexes
        if include_schema_indexes:
            self._db = db
        else:
            self._db = db.stats_clone(name=f"{db.name}-whatif")
            for index in self._db.schema.indexes():
                self._db.schema.drop_index(index)
        self.optimizer = Optimizer(self._db)
        self.fast_path = (
            fast_path_default() if fast_path is None else bool(fast_path)
        )
        self.jobs = max(1, int(jobs))
        self._plan_cache: LRUCache = LRUCache(
            max_cache_entries, on_evict=self._record_eviction
        )
        # sql -> [(used keys, config keys, plan), ...] newest last.
        self._canonical: dict[str, list[tuple[frozenset, frozenset, Plan]]] = {}
        self._pool = None                 # lazy ParallelCoster
        self.cache_hits = 0
        self.canonical_hits = 0
        self.cache_evictions = 0

    # -- bookkeeping --------------------------------------------------------

    @property
    def optimizer_calls(self) -> int:
        """Number of *uncached* optimizer invocations so far (worker
        processes' invocations are merged in by parallel costing)."""
        return self.optimizer.calls

    def _record_eviction(self, _key, _plan) -> None:
        self.cache_evictions += 1
        _whatif_evictions().inc()

    def cache_stats(self) -> dict:
        """Cache-tier snapshot (bench_perf / obs-report material)."""
        return {
            "exact_hits": self.cache_hits - self.canonical_hits,
            "canonical_hits": self.canonical_hits,
            "evictions": self.cache_evictions,
            "l1_entries": len(self._plan_cache),
            "canonical_statements": len(self._canonical),
            "optimizer_calls": self.optimizer.calls,
        }

    # -- analysis -----------------------------------------------------------

    def analyze(self, stmt: Statement) -> QueryInfo:
        return analyze_cached(self._db.schema, stmt)

    # -- planning -----------------------------------------------------------

    def _relevant(self, info: QueryInfo, config: Collection[Index]) -> list[Index]:
        """Project *config* onto the indexes that can affect *info*'s plan."""
        if not config:
            return []
        if self.fast_path and isinstance(info.stmt, ast.Select):
            usable = info.usable_columns()
            return [
                idx.as_dataless()
                for idx in config
                if not usable.get(idx.table, _EMPTY).isdisjoint(idx.columns)
            ]
        tables = set(info.bindings.values())
        return [idx.as_dataless() for idx in config if idx.table in tables]

    def plan(self, stmt: Statement, config: Collection[Index] = ()) -> Plan:
        """Plan *stmt* under hypothetical configuration *config*."""
        info = self.analyze(stmt)
        relevant = self._relevant(info, config)
        sql = info.cache_sql or info.stmt.to_sql()
        relevant_keys = frozenset(idx.key for idx in relevant)
        key = (sql, relevant_keys)
        _whatif_evals().inc()
        cached = self._plan_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            _whatif_hits().inc()
            return cached
        is_select = isinstance(info.stmt, ast.Select)
        if self.fast_path and is_select and relevant:
            canonical = self._canonical_lookup(sql, relevant_keys)
            if canonical is not None:
                self.cache_hits += 1
                self.canonical_hits += 1
                _whatif_hits().inc()
                _whatif_canonical_hits().inc()
                # Promote to an exact entry: the next identical lookup is O(1).
                self._plan_cache.put(key, canonical)
                return canonical
        plan = self.optimizer.explain(info, extra_indexes=relevant)
        self._plan_cache.put(key, plan)
        if self.fast_path and is_select and relevant:
            used_keys = frozenset(
                idx.key for idx in relevant if idx.name in plan.used_indexes
            )
            self._canonical_store(sql, used_keys, relevant_keys, plan)
        _whatif_cost().observe(plan.total_cost)
        return plan

    def _canonical_lookup(
        self, sql: str, config_keys: frozenset
    ) -> Optional[Plan]:
        entries = self._canonical.get(sql)
        if not entries:
            return None
        for used, config, plan in reversed(entries):
            if used <= config_keys <= config:
                return plan
        return None

    def _canonical_store(
        self,
        sql: str,
        used_keys: frozenset,
        config_keys: frozenset,
        plan: Plan,
    ) -> None:
        if used_keys == config_keys:
            # Serves only C' == C, which the exact tier already covers.
            return
        entries = self._canonical.setdefault(sql, [])
        for i, (used, config, _existing) in enumerate(entries):
            if used == used_keys:
                if config_keys <= config:
                    return                      # existing entry is wider
                if config <= config_keys:
                    entries[i] = (used_keys, config_keys, plan)
                    return                      # widen in place
        entries.append((used_keys, config_keys, plan))
        if len(entries) > CANONICAL_ENTRIES_PER_STATEMENT:
            entries.pop(0)
            self.cache_evictions += 1
            _whatif_evictions().inc()

    # -- costs --------------------------------------------------------------

    def cost(self, stmt: Statement, config: Collection[Index] = ()) -> float:
        return self.plan(stmt, config).total_cost

    def workload_cost(
        self,
        queries: Iterable[tuple[Statement, float]],
        config: Collection[Index] = (),
        jobs: Optional[int] = None,
    ) -> float:
        """Weighted workload cost: ``sum w_q * cost(q, X)`` (Eq. 1).

        With ``jobs > 1`` the per-query plans are computed by a process
        pool (deterministic chunking; the weighted sum is accumulated in
        the original query order, so the result is bit-identical to the
        serial one).  Workers ship their new plan-cache entries back, so
        later serial lookups still hit.
        """
        items = list(queries)
        n_jobs = self.jobs if jobs is None else max(1, int(jobs))
        with profile("whatif.workload_cost"):
            if n_jobs > 1 and len(items) > 1:
                costs = self._parallel_costs(items, config, n_jobs)
                if costs is not None:
                    return sum(
                        weight * cost
                        for (_stmt, weight), cost in zip(items, costs)
                    )
            return sum(
                weight * self.cost(stmt, config) for stmt, weight in items
            )

    def _parallel_costs(
        self,
        items: list[tuple[Statement, float]],
        config: Collection[Index],
        jobs: int,
    ) -> Optional[list[float]]:
        """Fan one workload costing out to the process pool.

        Returns None (fall back to serial) when the pool cannot be used,
        e.g. statements that are not picklable as SQL text.
        """
        from .parallel import ParallelCoster

        # Serve items this evaluator has already planned locally and ship
        # only the misses: warm costings never touch the pool, and the
        # (worker-affinity-dependent) duplicated work across workers is
        # limited to genuinely new (statement, config) pairs.
        resolved: list[Optional[float]] = [None] * len(items)
        sqls: list[str] = []
        miss_at: list[int] = []
        for i, (stmt, _weight) in enumerate(items):
            info = self.analyze(stmt)
            relevant_keys = frozenset(
                idx.key for idx in self._relevant(info, config)
            )
            sql = info.cache_sql or info.stmt.to_sql()
            if (sql, relevant_keys) in self._plan_cache:
                resolved[i] = self.cost(info, config)
            else:
                sqls.append(sql)
                miss_at.append(i)
        if not sqls:
            return resolved
        if len(sqls) < 2:
            for i in miss_at:
                stmt, _weight = items[i]
                resolved[i] = self.cost(stmt, config)
            return resolved
        if self._pool is None:
            self._pool = ParallelCoster(
                self._db,
                include_schema_indexes=self._include_schema_indexes,
                fast_path=self.fast_path,
                jobs=jobs,
            )
        costs, stats, exported = self._pool.costs(sqls, list(config), jobs)
        if costs is None:
            return None
        # Merge worker work back into this evaluator's accounting/caches.
        # The pool already merged the workers' *registry* deltas; mirroring
        # the same deltas onto the instance attributes keeps the documented
        # lockstep between e.g. ``cache_hits`` and ``whatif.cache_hits``.
        self.optimizer.calls += stats.get("optimizer_calls", 0)
        self.cache_hits += stats.get("cache_hits", 0)
        self.canonical_hits += stats.get("canonical_hits", 0)
        self.cache_evictions += stats.get("cache_evictions", 0)
        for sql, config_keys, used_keys, plan in exported:
            self._plan_cache.put((sql, config_keys), plan)
            if used_keys is not None:
                self._canonical_store(sql, used_keys, config_keys, plan)
        for i, cost in zip(miss_at, costs):
            resolved[i] = cost
        return resolved

    def close(self) -> None:
        """Shut down the parallel pool (if one was started)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __del__(self):   # pragma: no cover - interpreter-shutdown ordering
        try:
            self.close()
        except Exception:
            pass

    # -- introspection ------------------------------------------------------

    def used_subset(
        self, stmt: Statement, config: Collection[Index]
    ) -> list[Index]:
        """The subset of *config* the plan for *stmt* actually uses."""
        plan = self.plan(stmt, config)
        used = plan.used_indexes
        return [idx for idx in config if idx.name in used]


_EMPTY: frozenset = frozenset()
