"""Access path enumeration and costing for a single table binding.

Given the predicates on one table instance (filters plus any join
predicates whose other side is already bound), the available indexes and
the interesting order, :func:`enumerate_paths` produces every sensible
:class:`AccessPath` with its cost.  The cost formulas follow the classic
page-based model:

* sequential scan: heap pages sequentially + per-row CPU,
* index scan: B-tree descent + leaf pages + per-entry CPU + (unless the
  index covers the query) one random page per fetched row for the
  clustered-PK lookup.

Index prefix matching implements MySQL's multi-part range access
(paper Sec. IV-B2): an unbroken chain of equality-class predicates
(=, <=>, IN, IS NULL) on the leading index columns, optionally followed by
one range predicate; later index columns only help via index condition
pushdown and by making the index covering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..catalog import Index, Table
from ..engine.pages import CostParams
from ..sqlparser.predicates import AtomicPredicate
from ..stats import TableStats
from .plan import AccessPath
from .query_info import OrderColumn
from .selectivity import (
    MIN_SELECTIVITY,
    atomic_selectivity,
    combined_range_selectivity,
)
from .switches import DEFAULT_SWITCHES, OptimizerSwitches

#: Equality-class operators that keep the index prefix growing.
_EQ_OPS = frozenset({"=", "<=>", "IS NULL"})
#: IN also extends the prefix (multiple subranges) but breaks ordering.
_EQ_CLASS_OPS = _EQ_OPS | {"IN"}
_RANGE_OPS = frozenset({"<", "<=", ">", ">=", "BETWEEN", "LIKE"})


@dataclass(frozen=True)
class ProbeContext:
    """Extra equality predicates from join edges with bound outer tables.

    Maps inner column name -> per-probe selectivity (``1 / ndv``).
    """

    eq_selectivities: dict[str, float]

    @classmethod
    def empty(cls) -> "ProbeContext":
        return cls({})

    def columns(self) -> set[str]:
        return set(self.eq_selectivities)


def enumerate_paths(
    table: Table,
    stats: TableStats,
    params: CostParams,
    filters: Sequence[AtomicPredicate],
    indexes: Sequence[Index],
    referenced: set[str],
    probe: Optional[ProbeContext] = None,
    residual_selectivity: float = 1.0,
    order_cols: Sequence[OrderColumn] = (),
    group_cols: Sequence[str] = (),
    limit: Optional[int] = None,
    switches: OptimizerSwitches = DEFAULT_SWITCHES,
) -> list[AccessPath]:
    """Enumerate costed access paths for one binding.

    Args:
        table: catalog table.
        stats: table statistics.
        params: cost parameters.
        filters: atomic predicates on this binding (sargable or not).
        indexes: candidate secondary indexes on this table (materialized
            or dataless -- the optimizer treats them alike).
        referenced: columns of this table the query touches (covering test).
        probe: join-probe equality context, if this binding is a join inner.
        residual_selectivity: combined selectivity of complex (OR-tree)
            conjuncts on this binding, applied after all atomics.
        order_cols: the query's ORDER BY columns *if* they all belong to
            this binding (else pass empty).
        group_cols: likewise for GROUP BY columns.
        limit: LIMIT value for early-exit costing (single-binding queries).

    Returns:
        All enumerated paths; callers pick by min cost (and interesting
        order).  Always contains at least the sequential scan.
    """
    probe = probe or ProbeContext.empty()
    ctx = _TableContext(
        table, stats, params, list(filters), probe, residual_selectivity,
        referenced, list(order_cols), list(group_cols), limit, switches,
    )
    paths = [_seq_scan(ctx)]
    pk_path = _btree_path(ctx, None)
    if pk_path is not None:
        paths.append(pk_path)
    for index in indexes:
        path = _btree_path(ctx, index)
        if path is not None:
            paths.append(path)
    return paths


def best_path(paths: Sequence[AccessPath]) -> AccessPath:
    """The cheapest path (ties broken toward index paths, then covering)."""
    return min(
        paths, key=lambda p: (p.cost, p.method == "seq", not p.covering)
    )


def best_no_index_cost(paths: Sequence[AccessPath]) -> float:
    """Cheapest cost among paths that use no secondary index."""
    eligible = [p for p in paths if p.index is None]
    return min(p.cost for p in eligible)


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


class _TableContext:
    """Precomputed per-binding information shared by all path builders."""

    def __init__(
        self,
        table: Table,
        stats: TableStats,
        params: CostParams,
        filters: list[AtomicPredicate],
        probe: ProbeContext,
        residual_selectivity: float,
        referenced: set[str],
        order_cols: list[OrderColumn],
        group_cols: list[str],
        limit: Optional[int],
        switches: OptimizerSwitches = DEFAULT_SWITCHES,
    ):
        self.switches = switches
        self.table = table
        self.stats = stats
        self.params = params
        self.filters = filters
        self.probe = probe
        self.residual_sel = residual_selectivity
        self.referenced = referenced
        self.order_cols = order_cols
        self.group_cols = group_cols
        self.limit = limit if (limit is not None and limit > 0) else None
        self.rows = max(1, stats.row_count)

        # Group atomic predicates by column, remembering best (lowest)
        # selectivity per (column, class).  Range predicates on one column
        # combine into one interval (``a <= col < b``).
        self.eq_sel: dict[str, float] = {}
        self.ordered_eq: dict[str, bool] = {}   # False if via IN (order-breaking)
        self.range_sel: dict[str, float] = {}
        self.other_sel: dict[str, float] = {}
        range_preds: dict[str, list[AtomicPredicate]] = {}
        for pred in filters:
            col = pred.column.column
            if pred.op in _EQ_CLASS_OPS:
                sel = atomic_selectivity(pred, stats.column(col))
                if sel < self.eq_sel.get(col, 2.0):
                    self.eq_sel[col] = sel
                    self.ordered_eq[col] = pred.op in _EQ_OPS
            elif pred.op in _RANGE_OPS:
                range_preds.setdefault(col, []).append(pred)
            else:
                sel = atomic_selectivity(pred, stats.column(col))
                self.other_sel[col] = min(sel, self.other_sel.get(col, 1.0))
        for col, preds in range_preds.items():
            self.range_sel[col] = combined_range_selectivity(
                preds, stats.column(col)
            )
        for col, sel in probe.eq_selectivities.items():
            # Join-bound equality: single value per probe, order-preserving.
            if sel < self.eq_sel.get(col, 2.0):
                self.eq_sel[col] = sel
                self.ordered_eq[col] = True

        # Selectivity of *all* predicates combined (atoms + complex).
        total = residual_selectivity
        for sel in self.eq_sel.values():
            total *= sel
        for sel in self.range_sel.values():
            total *= sel
        for sel in self.other_sel.values():
            total *= sel
        self.total_sel = max(MIN_SELECTIVITY, total)
        self.n_predicates = (
            len(self.eq_sel) + len(self.range_sel) + len(self.other_sel)
        )

    def rows_out(self) -> float:
        return self.rows * self.total_sel


def _seq_scan(ctx: _TableContext) -> AccessPath:
    params = ctx.params
    pages = params.pages_for(ctx.rows, ctx.table.row_width)
    io = pages * params.seq_page_cost
    cpu = ctx.rows * params.cpu_tuple_cost
    cpu += ctx.rows * max(1, ctx.n_predicates) * params.cpu_operator_cost
    return AccessPath(
        binding="", table=ctx.table.name, method="seq",
        rows_examined=float(ctx.rows), rows_out=ctx.rows_out(),
        cost=io + cpu, io_cost=io, covering=True,
    )


def _btree_path(ctx: _TableContext, index: Optional[Index]) -> Optional[AccessPath]:
    """Cost a B-tree path: the clustered PK when *index* is None, else a
    secondary index.  Returns None when the index matches no predicate and
    provides no useful order (such a path is strictly worse than choices
    we already enumerate)."""
    table, params = ctx.table, ctx.params
    key_columns = table.primary_key if index is None else index.columns

    eq_cols: list[str] = []
    ordered_prefix = 0          # leading single-value eq columns
    prefix_broken = False
    sel = 1.0
    range_col: Optional[str] = None
    skip_groups = 0             # skip-scan subranges (leading column skipped)
    for pos, col in enumerate(key_columns):
        if not prefix_broken and col in ctx.eq_sel:
            eq_cols.append(col)
            sel *= ctx.eq_sel[col]
            if ctx.ordered_eq[col] and ordered_prefix == len(eq_cols) - 1:
                ordered_prefix += 1
            continue
        if not prefix_broken and col in ctx.range_sel:
            range_col = col
            sel *= ctx.range_sel[col]
        elif (
            pos == 0
            and index is not None
            and ctx.switches.skip_scan
            and ctx.stats.column(col).ndv <= ctx.switches.skip_scan_max_ndv
        ):
            # MySQL 8 skip scan: no predicate on the leading column, but
            # its NDV is small enough to probe one subrange per value.
            skip_groups = max(1, ctx.stats.column(col).ndv)
            continue
        prefix_broken = True
        # Columns after the prefix can still serve ICP; handled below.
    if skip_groups and not eq_cols and range_col is None:
        skip_groups = 0   # nothing to bound within the groups: useless
    sel = max(MIN_SELECTIVITY, min(1.0, sel))

    covering = _is_covering(ctx, index)
    order_sat, group_sat = _order_group_satisfaction(
        ctx, key_columns, ordered_prefix, range_col, eq_cols
    )
    if skip_groups:
        # Subranges break global ordering and grouping guarantees.
        order_sat = group_sat = False
    useful = bool(eq_cols) or range_col is not None or order_sat or group_sat
    if not useful:
        return None

    matched = max(1.0, ctx.rows * sel) if sel < 1.0 else float(ctx.rows)

    # Index condition pushdown: predicates on key columns beyond the
    # matched prefix filter entries before the PK lookup.
    icp_sel = 1.0
    if ctx.switches.index_condition_pushdown:
        prefix_set = set(eq_cols) | ({range_col} if range_col else set())
        for col in key_columns:
            if col in prefix_set:
                continue
            if col in ctx.eq_sel:
                icp_sel *= ctx.eq_sel[col]
            if col in ctx.range_sel:
                icp_sel *= ctx.range_sel[col]

    # Early exit under ORDER BY ... LIMIT: scan only until LIMIT rows pass.
    out_sel = max(MIN_SELECTIVITY, ctx.total_sel / sel)  # post-index filters
    if order_sat and ctx.limit and not ctx.group_cols:
        needed = ctx.limit / out_sel
        matched = min(matched, max(1.0, needed))

    # One random page reaches the leaf level: buffer pools keep internal
    # B-tree nodes cached, so descents cost a single uncached page.  A
    # skip scan descends once per leading-column subrange.
    height_io = params.random_page_cost * max(1, skip_groups)
    lookups = 0.0
    if index is None:
        # Clustered PK: leaf pages are full rows; never a separate lookup.
        leaf_pages = params.pages_for(math.ceil(matched), table.row_width)
        io = height_io + leaf_pages * params.seq_page_cost
        cpu = matched * params.cpu_tuple_cost
        rows_examined = matched
    else:
        entry_width = index.entry_width(table)
        leaf_pages = params.pages_for(math.ceil(matched), entry_width)
        io = height_io + leaf_pages * params.seq_page_cost
        cpu = matched * params.cpu_index_tuple_cost
        rows_examined = matched
        if not covering:
            lookups = matched * icp_sel
            io += lookups * params.random_page_cost
            cpu += lookups * params.cpu_tuple_cost
            rows_examined += lookups
    cpu += matched * max(1, ctx.n_predicates - len(eq_cols)) * params.cpu_operator_cost

    rows_out = max(MIN_SELECTIVITY, ctx.rows * ctx.total_sel)
    if order_sat and ctx.limit and not ctx.group_cols:
        rows_out = min(rows_out, float(ctx.limit))
    return AccessPath(
        binding="", table=table.name,
        method="pk" if index is None else "index",
        index=index,
        eq_columns=tuple(eq_cols),
        range_column=range_col,
        index_selectivity=sel,
        rows_examined=rows_examined,
        rows_out=rows_out,
        cost=io + cpu,
        io_cost=io,
        lookup_rows=lookups,
        covering=covering,
        order_satisfied=order_sat,
        group_satisfied=group_sat,
        skip_scan=skip_groups > 0,
    )


def _is_covering(ctx: _TableContext, index: Optional[Index]) -> bool:
    if index is None:
        return True   # clustered PK holds every column
    available = set(index.columns) | set(ctx.table.primary_key)
    return ctx.referenced <= available


def _order_group_satisfaction(
    ctx: _TableContext,
    key_columns: tuple[str, ...],
    ordered_prefix: int,
    range_col: Optional[str],
    eq_cols: list[str],
) -> tuple[bool, bool]:
    """Decide whether this key ordering satisfies ORDER BY / GROUP BY.

    Only a prefix of *single-value* equality columns may precede the
    order/group columns (an IN prefix yields multiple subranges and breaks
    global ordering).  A range predicate is only permitted on the first
    order column itself.
    """
    after = list(key_columns[ordered_prefix:])
    order_sat = False
    if ctx.order_cols:
        wanted = [o.column for o in ctx.order_cols]
        directions = {o.desc for o in ctx.order_cols}
        if (
            len(directions) == 1
            and len(after) >= len(wanted)
            and after[: len(wanted)] == wanted
            and len(eq_cols) == ordered_prefix      # no IN in the prefix
            and (range_col is None or range_col == wanted[0])
        ):
            order_sat = True
    group_sat = False
    if ctx.group_cols:
        k = len(ctx.group_cols)
        if (
            len(after) >= k
            and set(after[:k]) == set(ctx.group_cols)
            and len(eq_cols) == ordered_prefix
            and (range_col is None or range_col in ctx.group_cols)
        ):
            group_sat = True
    return order_sat, group_sat
